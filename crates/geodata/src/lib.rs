//! # dcd-geodata
//!
//! A procedural stand-in for the paper's study area (§3): the West Fork Big
//! Blue Watershed, Nebraska — a gently sloping loess plain under intensive
//! agriculture, imaged by 1 m NAIP 4-band orthophotos, with 2022 manually
//! digitized drainage-crossing locations.
//!
//! The generator builds, from a seed:
//!
//! 1. a fractal **DEM** with the plain's west→east descent ([`dem`]);
//! 2. a **stream network** via D8 flow routing and flow accumulation, after
//!    priority-flood depression filling ([`hydrology`]);
//! 3. a rectangular **road grid** (the dense section-line roads of the
//!    region), whose embankments create the paper's "digital dams";
//! 4. **drainage crossings** wherever a road crosses a stream ([`scene`]);
//! 5. 4-band (R, G, B, NIR) **imagery** rendered from land cover ([`render`]);
//! 6. a labelled **patch dataset** of 100×100 clips centred on crossings
//!    plus negative clips, with an 80/20 train/test split ([`dataset`]).
//!
//! The hydrology module also reproduces the paper's Fig 1 motivation: flow
//! routing over a DEM with road embankments fragments the drainage network,
//! and breaching the DEM at detected crossing locations restores
//! connectivity ([`hydrology::connectivity`]).

pub mod dataset;
pub mod dem;
pub mod grid;
pub mod hydrology;
pub mod render;
pub mod scene;
pub mod visualize;

pub use dataset::{DatasetConfig, PatchDataset};
pub use dem::{generate_dem, DemConfig};
pub use grid::Grid;
pub use hydrology::{connectivity, fill_depressions, flow_accumulation, flow_directions, D8};
pub use render::render_bands;
pub use scene::{generate_scene, Scene, SceneConfig};
pub use visualize::{bands_to_cir, bands_to_rgb, grid_to_gray, scene_overlay, RgbImage};
