//! Watershed scene assembly: DEM + streams + roads + drainage crossings.

use crate::dem::{generate_dem, DemConfig};
use crate::grid::Grid;
use crate::hydrology::{fill_depressions, flow_accumulation, flow_directions};
use dcd_tensor::SeededRng;

/// Scene generator parameters.
#[derive(Debug, Clone, Copy)]
pub struct SceneConfig {
    /// DEM parameters (also sets the raster size).
    pub dem: DemConfig,
    /// Spacing between parallel roads, cells (section-line roads are dense
    /// in the study area).
    pub road_spacing: usize,
    /// Half-width of a road stripe, cells.
    pub road_halfwidth: usize,
    /// Flow-accumulation threshold for calling a cell a stream.
    pub stream_threshold: f32,
    /// Height of a road embankment added to the DEM, metres.
    pub embankment_height: f32,
}

impl Default for SceneConfig {
    fn default() -> Self {
        SceneConfig {
            dem: DemConfig::default(),
            road_spacing: 128,
            road_halfwidth: 2,
            stream_threshold: 400.0,
            embankment_height: 2.0,
        }
    }
}

/// A generated watershed scene.
#[derive(Debug, Clone)]
pub struct Scene {
    /// Bare-earth DEM (before embankments).
    pub dem: Grid,
    /// DEM with road embankments burned in (the "digital dam" surface).
    pub dem_with_roads: Grid,
    /// Stream mask (1.0 on stream cells).
    pub streams: Grid,
    /// Road mask (1.0 on road cells).
    pub roads: Grid,
    /// Flow accumulation of the bare-earth DEM.
    pub flow_acc: Grid,
    /// Drainage-crossing locations `(x, y)` — road ∩ stream.
    pub crossings: Vec<(usize, usize)>,
}

impl Scene {
    /// Raster width.
    pub fn width(&self) -> usize {
        self.dem.width()
    }

    /// Raster height.
    pub fn height(&self) -> usize {
        self.dem.height()
    }
}

/// Generates a full scene from a seed.
///
/// Pipeline: DEM → fill → D8 → accumulation → stream mask; rectangular road
/// grid with per-road jitter; crossings at road∩stream cells (deduplicated
/// so each crossing is one location, like the paper's manually digitized
/// points); embankments burned into a copy of the DEM.
pub fn generate_scene(config: &SceneConfig, rng: &mut SeededRng) -> Scene {
    let dem = generate_dem(&config.dem, rng);
    let filled = fill_depressions(&dem);
    let dirs = flow_directions(&filled);
    let flow_acc = flow_accumulation(&filled, &dirs);

    let w = dem.width();
    let h = dem.height();
    let mut streams = Grid::new(w, h);
    for i in 0..flow_acc.len() {
        if flow_acc.data()[i] >= config.stream_threshold {
            streams.data_mut()[i] = 1.0;
        }
    }

    // Road grid with jitter: vertical and horizontal stripes.
    let mut roads = Grid::new(w, h);
    let spacing = config.road_spacing.max(8);
    let jitter = (spacing / 8).max(1);
    let mut x = spacing / 2;
    while x < w {
        let cx = x + rng.index(2 * jitter + 1) - jitter;
        for y in 0..h {
            for dx in 0..=2 * config.road_halfwidth {
                let rx = cx + dx;
                if rx >= config.road_halfwidth && rx - config.road_halfwidth < w {
                    roads.set(rx - config.road_halfwidth, y, 1.0);
                }
            }
        }
        x += spacing;
    }
    let mut y = spacing / 2;
    while y < h {
        let cy = y + rng.index(2 * jitter + 1) - jitter;
        for xx in 0..w {
            for dy in 0..=2 * config.road_halfwidth {
                let ry = cy + dy;
                if ry >= config.road_halfwidth && ry - config.road_halfwidth < h {
                    roads.set(xx, ry - config.road_halfwidth, 1.0);
                }
            }
        }
        y += spacing;
    }

    // Crossings: road ∩ stream, deduplicated within a radius so one culvert
    // is one point.
    let mut crossings: Vec<(usize, usize)> = Vec::new();
    let min_sep = (config.road_halfwidth * 2 + 6) as i64;
    for yy in 0..h {
        for xx in 0..w {
            if roads.get(xx, yy) > 0.0 && streams.get(xx, yy) > 0.0 {
                let far = crossings.iter().all(|&(px, py)| {
                    (px as i64 - xx as i64).abs() + (py as i64 - yy as i64).abs() > min_sep
                });
                if far {
                    crossings.push((xx, yy));
                }
            }
        }
    }

    // Burn embankments into a copy of the DEM (the digital-dam surface).
    let mut dem_with_roads = dem.clone();
    for i in 0..roads.len() {
        if roads.data()[i] > 0.0 {
            dem_with_roads.data_mut()[i] += config.embankment_height;
        }
    }

    Scene {
        dem,
        dem_with_roads,
        streams,
        roads,
        flow_acc,
        crossings,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_scene(seed: u64) -> Scene {
        let config = SceneConfig {
            dem: DemConfig {
                width: 256,
                height: 256,
                ..DemConfig::default()
            },
            road_spacing: 64,
            stream_threshold: 150.0,
            ..SceneConfig::default()
        };
        generate_scene(&config, &mut SeededRng::new(seed))
    }

    #[test]
    fn scene_has_streams_roads_and_crossings() {
        let s = small_scene(42);
        assert!(s.streams.count(|v| v > 0.0) > 50, "streams too sparse");
        assert!(s.roads.count(|v| v > 0.0) > 1000, "roads too sparse");
        assert!(!s.crossings.is_empty(), "no crossings generated");
    }

    #[test]
    fn crossings_lie_on_roads_and_streams() {
        let s = small_scene(43);
        for &(x, y) in &s.crossings {
            assert!(s.roads.get(x, y) > 0.0, "crossing off-road at ({x},{y})");
            assert!(
                s.streams.get(x, y) > 0.0,
                "crossing off-stream at ({x},{y})"
            );
        }
    }

    #[test]
    fn crossings_are_separated() {
        let s = small_scene(44);
        for (i, &(ax, ay)) in s.crossings.iter().enumerate() {
            for &(bx, by) in &s.crossings[i + 1..] {
                let d = (ax as i64 - bx as i64).abs() + (ay as i64 - by as i64).abs();
                assert!(d > 6, "crossings too close: ({ax},{ay}) vs ({bx},{by})");
            }
        }
    }

    #[test]
    fn embankments_raise_road_cells_only() {
        let s = small_scene(45);
        for y in 0..s.height() {
            for x in 0..s.width() {
                let delta = s.dem_with_roads.get(x, y) - s.dem.get(x, y);
                if s.roads.get(x, y) > 0.0 {
                    assert!(delta > 0.0);
                } else {
                    assert_eq!(delta, 0.0);
                }
            }
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let a = small_scene(7);
        let b = small_scene(7);
        assert_eq!(a.crossings, b.crossings);
        assert_eq!(a.dem, b.dem);
    }
}
