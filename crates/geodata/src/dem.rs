//! Fractal DEM generation.
//!
//! Multi-octave value noise over a regional west→east gradient reproduces
//! the study area's character: a gently undulating loess plain descending
//! from west to east (§3.1), with shallow depressional wetlands.

use crate::grid::Grid;
use dcd_tensor::SeededRng;

/// DEM generator parameters.
#[derive(Debug, Clone, Copy)]
pub struct DemConfig {
    /// Raster width in cells (1 cell = 1 m, like NAIP).
    pub width: usize,
    /// Raster height in cells.
    pub height: usize,
    /// Elevation drop from the west edge to the east edge, metres.
    pub regional_drop: f32,
    /// Peak-to-peak amplitude of local relief, metres.
    pub relief: f32,
    /// Number of noise octaves.
    pub octaves: usize,
    /// Base elevation at the west edge, metres.
    pub base_elevation: f32,
}

impl Default for DemConfig {
    fn default() -> Self {
        DemConfig {
            width: 512,
            height: 512,
            regional_drop: 12.0,
            relief: 3.0,
            octaves: 5,
            base_elevation: 500.0,
        }
    }
}

/// Smooth value noise: random lattice values interpolated with smoothstep.
fn value_noise(width: usize, height: usize, cell: usize, rng: &mut SeededRng) -> Grid {
    let gw = width / cell + 2;
    let gh = height / cell + 2;
    let lattice: Vec<f32> = (0..gw * gh).map(|_| rng.uniform_range(-1.0, 1.0)).collect();
    let mut out = Grid::new(width, height);
    let smooth = |t: f32| t * t * (3.0 - 2.0 * t);
    for y in 0..height {
        let gy = y / cell;
        let ty = smooth((y % cell) as f32 / cell as f32);
        for x in 0..width {
            let gx = x / cell;
            let tx = smooth((x % cell) as f32 / cell as f32);
            let v00 = lattice[gy * gw + gx];
            let v10 = lattice[gy * gw + gx + 1];
            let v01 = lattice[(gy + 1) * gw + gx];
            let v11 = lattice[(gy + 1) * gw + gx + 1];
            let top = v00 + (v10 - v00) * tx;
            let bot = v01 + (v11 - v01) * tx;
            out.set(x, y, top + (bot - top) * ty);
        }
    }
    out
}

/// Generates a DEM from the configuration and a seed.
pub fn generate_dem(config: &DemConfig, rng: &mut SeededRng) -> Grid {
    assert!(config.octaves > 0, "need at least one octave");
    let mut dem = Grid::new(config.width, config.height);
    // Regional west→east gradient.
    for y in 0..config.height {
        for x in 0..config.width {
            let t = x as f32 / (config.width - 1).max(1) as f32;
            dem.set(x, y, config.base_elevation - t * config.regional_drop);
        }
    }
    // Fractal relief: halve cell size and amplitude per octave.
    let mut amplitude = config.relief / 2.0;
    let mut cell = (config.width.min(config.height) / 4).max(2);
    for _ in 0..config.octaves {
        let noise = value_noise(config.width, config.height, cell, rng);
        for i in 0..dem.len() {
            dem.data_mut()[i] += amplitude * noise.data()[i];
        }
        amplitude *= 0.5;
        cell = (cell / 2).max(2);
    }
    dem
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_config() -> DemConfig {
        DemConfig {
            width: 64,
            height: 48,
            ..DemConfig::default()
        }
    }

    #[test]
    fn dem_has_requested_dimensions() {
        let mut rng = SeededRng::new(1);
        let dem = generate_dem(&small_config(), &mut rng);
        assert_eq!(dem.width(), 64);
        assert_eq!(dem.height(), 48);
    }

    #[test]
    fn west_is_higher_than_east() {
        let mut rng = SeededRng::new(2);
        let dem = generate_dem(&small_config(), &mut rng);
        let west: f32 = (0..dem.height()).map(|y| dem.get(1, y)).sum::<f32>() / dem.height() as f32;
        let east: f32 = (0..dem.height())
            .map(|y| dem.get(dem.width() - 2, y))
            .sum::<f32>()
            / dem.height() as f32;
        assert!(west > east + 5.0, "west {west} east {east}");
    }

    #[test]
    fn relief_is_bounded() {
        let mut rng = SeededRng::new(3);
        let cfg = small_config();
        let dem = generate_dem(&cfg, &mut rng);
        let span = dem.max() - dem.min();
        // Span = regional drop ± local relief; noise sums to < 2·relief.
        assert!(span < cfg.regional_drop + 2.0 * cfg.relief, "span {span}");
        assert!(span > cfg.regional_drop * 0.5, "span {span}");
    }

    #[test]
    fn deterministic_per_seed() {
        let cfg = small_config();
        let a = generate_dem(&cfg, &mut SeededRng::new(7));
        let b = generate_dem(&cfg, &mut SeededRng::new(7));
        assert_eq!(a, b);
        let c = generate_dem(&cfg, &mut SeededRng::new(8));
        assert_ne!(a, c);
    }

    #[test]
    fn noise_is_smooth() {
        // Adjacent cells differ by much less than the total relief.
        let mut rng = SeededRng::new(4);
        let dem = generate_dem(&small_config(), &mut rng);
        let mut max_step = 0.0f32;
        for y in 0..dem.height() {
            for x in 1..dem.width() {
                max_step = max_step.max((dem.get(x, y) - dem.get(x - 1, y)).abs());
            }
        }
        assert!(max_step < 1.5, "max neighbour step {max_step} m");
    }
}
