//! `drainage-repro` — command-line interface to the reproduction stack.
//!
//! ```text
//! drainage-repro train   [--epochs N] [--seed S] [--out model.json]
//! drainage-repro scan    [--model model.json] [--seed S] [--threshold T]
//! drainage-repro profile [--batch B] [--timeline out.json]
//! drainage-repro serve   [--scenario NAME] [--seed S] [--timeline out.json]
//! drainage-repro sweep
//! ```
//!
//! `train` fits a compact SPP-Net on a synthetic watershed and writes a
//! JSON checkpoint; `scan` loads it and scans a fresh scene; `profile`
//! prints the nsys-style report for the paper's final model (and with
//! `--timeline out.json` also records a small host workload and writes a
//! merged host+device Chrome-trace timeline for Perfetto); `serve` replays
//! a named chaos scenario through the fault-aware serving runtime and
//! prints its SLO report; `sweep` prints the Fig 6 batch-size sweep.

use dcd_core::scan::{match_detections, scan_scene, ScanConfig};
use dcd_core::{profile_run, DrainageCrossingDetector, Pipeline, PipelineConfig};
use dcd_geodata::dataset::small_config;
use dcd_geodata::render::render_bands;
use dcd_geodata::PatchDataset;
use dcd_gpusim::DeviceSpec;
use dcd_nn::{Checkpoint, Sgd, SppNet, SppNetConfig, TrainConfig, Trainer};
use dcd_profiler::ProfileReport;
use dcd_tensor::SeededRng;

/// Looks up `--name value` in the argument list.
fn flag(args: &[String], name: &str) -> Option<String> {
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1).cloned())
}

fn parse<T: std::str::FromStr>(args: &[String], name: &str, default: T) -> T {
    flag(args, name)
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("train") => cmd_train(&args),
        Some("scan") => cmd_scan(&args),
        Some("profile") => cmd_profile(&args),
        Some("serve") => cmd_serve(&args),
        Some("sweep") => cmd_sweep(),
        _ => {
            eprintln!("usage: drainage-repro <train|scan|profile|serve|sweep> [flags]");
            eprintln!("  train   [--epochs N] [--seed S] [--out model.json]");
            eprintln!("  scan    [--model model.json] [--seed S] [--threshold T]");
            eprintln!("  profile [--batch B] [--timeline out.json]");
            eprintln!("  serve   [--scenario NAME] [--seed S] [--timeline out.json]");
            eprintln!("  sweep");
            std::process::exit(2);
        }
    }
}

fn dataset(seed: u64) -> PatchDataset {
    let mut cfg = small_config();
    cfg.center_jitter = 2;
    PatchDataset::generate(&cfg, seed)
}

fn cmd_train(args: &[String]) {
    let epochs = parse(args, "--epochs", 18usize);
    let seed = parse(args, "--seed", 42u64);
    let out = flag(args, "--out").unwrap_or_else(|| "model.json".to_string());

    let ds = dataset(seed);
    println!(
        "dataset: {} train / {} test patches",
        ds.train.len(),
        ds.test.len()
    );
    let mut arch = SppNetConfig::original();
    arch.channels = [12, 24, 32];
    arch.fc1 = 128;
    println!("training {} for {epochs} epochs ...", arch.summary());
    let mut rng = SeededRng::new(7);
    let mut model = SppNet::new(arch, &mut rng);
    Trainer::new(TrainConfig {
        epochs,
        batch_size: 20,
        sgd: Sgd::new(0.015, 0.9, 0.0005),
        lr_decay_every: Some((epochs / 3).max(1)),
        ..Default::default()
    })
    .train(&mut model, &ds.train);
    let (ap, _) = dcd_nn::trainer::evaluate(&mut model, &ds.test, 0.5);
    println!("test AP@IoU0.5 = {ap:.3}");
    let ckpt = Checkpoint::save(&mut model);
    std::fs::write(&out, ckpt.to_json()).expect("write checkpoint");
    println!("checkpoint written to {out}");
}

fn cmd_scan(args: &[String]) {
    let path = flag(args, "--model").unwrap_or_else(|| "model.json".to_string());
    let seed = parse(args, "--seed", 43u64);
    let threshold = parse(args, "--threshold", 0.6f32);

    let json = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("cannot read checkpoint {path}: {e} (run `train` first)"));
    let ckpt = Checkpoint::from_json(&json).expect("valid checkpoint JSON");
    let model = ckpt.load().expect("checkpoint matches its architecture");
    let mut detector = DrainageCrossingDetector::from_model(model);
    detector.threshold = threshold;
    println!("loaded {} from {path}", detector.config().summary());

    let ds = dataset(seed);
    let bands = render_bands(&ds.scene, 0.03, &mut SeededRng::new(seed ^ 0xABCD));
    let scan = ScanConfig::for_patch(64).with_batch_size(32);
    let dets = scan_scene(&mut detector, &bands, &scan);
    println!("x,y,score");
    for d in &dets {
        println!("{},{},{:.3}", d.x, d.y, d.score);
    }
    let (p, r) = match_detections(&dets, &ds.scene.crossings, 12);
    eprintln!(
        "{} detections vs {} digitized crossings: precision {p:.2}, recall {r:.2}",
        dets.len(),
        ds.scene.crossings.len()
    );
}

/// A small real workload on the host implementation — a one-epoch training
/// run plus a scene scan — so the merged timeline has gemm/conv/scan/trainer
/// spans to interleave with the simulated device trace.
fn host_workload() {
    let mut cfg = small_config();
    cfg.center_jitter = 2;
    let ds = PatchDataset::generate(&cfg, 11);
    let mut rng = SeededRng::new(7);
    let mut arch = SppNetConfig::tiny();
    arch.in_channels = ds.train[0].image.dims()[0];
    let mut model = SppNet::new(arch, &mut rng);
    let subset = &ds.train[..ds.train.len().min(16)];
    Trainer::new(TrainConfig {
        epochs: 1,
        batch_size: 8,
        ..Default::default()
    })
    .train(&mut model, subset);
    let mut detector = DrainageCrossingDetector::from_model(model);
    detector.threshold = 0.9;
    let bands = render_bands(&ds.scene, 0.03, &mut SeededRng::new(5));
    let scan = ScanConfig::for_patch(48).with_batch_size(8).with_stride(24);
    let _ = scan_scene(&mut detector, &bands, &scan);
}

fn cmd_profile(args: &[String]) {
    let batch = parse(args, "--batch", 32usize);
    let timeline = flag(args, "--timeline");
    if timeline.is_some() {
        dcd_obs::set_enabled(true);
        host_workload();
    }
    let (profile, trace) = profile_run(
        &SppNetConfig::candidate2(),
        (100, 100),
        &DeviceSpec::rtx_a5500(),
        batch,
        20,
    );
    let mut report = ProfileReport::from_trace(&trace);
    if timeline.is_some() {
        report = report.with_host_spans(dcd_obs::drain_spans());
    }
    println!("{}", report.render());
    if timeline.is_some() {
        println!("{}", dcd_obs::snapshot().render());
    }
    println!(
        "batch {batch}: latency {:.3} ms, memops/image {:.0} ns, GPU mem {:.0} MB",
        profile.latency_ns / 1e6,
        profile.memops_per_image_ns,
        profile.mem_used_bytes as f64 / 1e6
    );
    if let Some(path) = timeline {
        std::fs::write(&path, report.chrome_trace().to_json()).expect("write timeline JSON");
        eprintln!(
            "merged host+device timeline written to {path} (open at https://ui.perfetto.dev)"
        );
    }
}

fn cmd_serve(args: &[String]) {
    let name = flag(args, "--scenario").unwrap_or_else(|| "fault-burst".to_string());
    let seed = parse(args, "--seed", 42u64);
    let timeline = flag(args, "--timeline");

    let Some(sc) = dcd_serve::scenario(&name, seed) else {
        eprintln!(
            "unknown scenario '{name}'; catalog: {}",
            dcd_serve::scenario_names().join(", ")
        );
        std::process::exit(2);
    };
    if timeline.is_some() {
        dcd_obs::set_enabled(true);
    }
    let (report, trace) = dcd_serve::run_scenario(&sc);

    println!(
        "scenario {name} (seed {seed}): {} offered over {:.1} ms, drained at {:.1} ms",
        report.offered,
        sc.arrivals.duration_ns as f64 / 1e6,
        report.end_ns as f64 / 1e6
    );
    println!(
        "  served {} ({:.1}% within deadline), late {}, shed {} (capacity {} / brownout {}), dropped {}, unserved {}",
        report.served,
        report.served_fraction() * 100.0,
        report.late,
        report.shed_capacity + report.shed_brownout,
        report.shed_capacity,
        report.shed_brownout,
        report.dropped,
        report.unserved
    );
    println!(
        "  batches {} ({} failed), latency p50 {:.3} ms / p99 {:.3} ms",
        report.batches,
        report.failed_batches,
        report.p50_latency_ns as f64 / 1e6,
        report.p99_latency_ns as f64 / 1e6
    );
    println!(
        "  breaker: final {}, open {:.3} ms total{}",
        report.final_breaker_state().label(),
        report.breaker_open_ns as f64 / 1e6,
        if report.fell_back {
            "; latched sequential fallback"
        } else {
            ""
        }
    );
    for (t, s) in &report.breaker_transitions {
        println!("    {:>10.3} ms  breaker -> {}", *t as f64 / 1e6, s.label());
    }
    for (t, l) in &report.brownout_transitions {
        println!(
            "    {:>10.3} ms  brownout -> {}",
            *t as f64 / 1e6,
            l.label()
        );
    }
    if !report.health.is_clean() {
        println!(
            "  health: {} retries, {} faults seen, {} degradations, {} hangs, backoff wait {:.3} ms",
            report.health.retries,
            report.health.faults_seen(),
            report.health.degradations,
            report.health.device_hangs,
            report.health.backoff_wait_ns as f64 / 1e6
        );
    }
    assert!(report.conserved(), "request ledger does not balance");

    if let Some(path) = timeline {
        let report = ProfileReport::from_trace(&trace).with_host_spans(dcd_obs::drain_spans());
        std::fs::write(&path, report.chrome_trace().to_json()).expect("write timeline JSON");
        eprintln!(
            "merged host+device timeline written to {path} (open at https://ui.perfetto.dev)"
        );
    }
}

fn cmd_sweep() {
    let pipeline = Pipeline::new(PipelineConfig::default());
    let sweep = pipeline.batch_sweep(&SppNetConfig::candidate2());
    println!("batch,sequential_ns_per_image,optimized_ns_per_image");
    for pt in &sweep {
        println!(
            "{},{:.0},{:.0}",
            pt.batch, pt.sequential_ns_per_image, pt.optimized_ns_per_image
        );
    }
    eprintln!(
        "optimal batch (diminishing-gains rule): {}",
        Pipeline::pick_optimal_batch(&sweep)
    );
}
