//! Umbrella crate re-exporting the whole drainage-crossing reproduction stack.
//!
//! Most users should depend on [`dcd_core`] directly; this crate exists so the
//! workspace-level `examples/` and `tests/` can exercise every layer.

pub use dcd_core as core;
pub use dcd_geodata as geodata;
pub use dcd_gpusim as gpusim;
pub use dcd_ios as ios;
pub use dcd_nas as nas;
pub use dcd_nn as nn;
pub use dcd_profiler as profiler;
pub use dcd_tensor as tensor;
