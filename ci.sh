#!/usr/bin/env bash
# Repo CI gate: formatting, lints, then the tier-1 build+test sweep.
# Run from the repo root. Fails fast on the first broken stage.
set -euo pipefail
cd "$(dirname "$0")"

echo "== cargo fmt --check =="
cargo fmt --check

echo "== cargo clippy --workspace -D warnings -D deprecated =="
# -D deprecated keeps in-repo code off the legacy dcd-profiler free
# functions: everything must go through ProfileReport.
cargo clippy --workspace --all-targets -- -D warnings -D deprecated

echo "== tier-1: cargo build --release && cargo test -q =="
cargo build --release
cargo test -q

# The rayon shim runs a real thread pool; the whole suite must also pass
# with the pool pinned sequential (RAYON_NUM_THREADS=1), and the parallel
# equivalence tests assert both modes produce bit-identical results.
echo "== tier-1 again, pool pinned sequential (RAYON_NUM_THREADS=1) =="
RAYON_NUM_THREADS=1 cargo test -q

echo "== kernel equivalence under a pinned-sequential pool =="
RAYON_NUM_THREADS=1 cargo test -q -p dcd-tensor --test parallel_equivalence

# The chaos scenarios must be bit-reproducible regardless of thread count:
# the serving acceptance suite runs under the default pool and pinned
# sequential, and both must see identical counts and breaker transitions.
echo "== chaos serving suite, default pool =="
cargo test -q --test serving
echo "== chaos serving suite, pool pinned sequential =="
RAYON_NUM_THREADS=1 cargo test -q --test serving

echo "== criterion benches compile =="
cargo bench --workspace --no-run

echo "== parallel kernel microbenchmark -> BENCH_parallel.json =="
cargo run --release -q -p dcd-bench --bin parallel

echo "== packed-vs-legacy GEMM microbenchmark -> BENCH_gemm.json =="
cargo run --release -q -p dcd-bench --bin gemm

echo "== observability overhead microbenchmark -> BENCH_obs.json =="
cargo run --release -q -p dcd-bench --bin obs

echo "== serving SLO benchmark -> BENCH_serve.json =="
cargo run --release -q -p dcd-bench --bin serve

echo "CI OK"
