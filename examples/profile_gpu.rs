//! nsys-style GPU profiling of SPP-Net inference on the simulated RTX A5500
//! (§7): the equivalent of
//! `nsys profile --stats=true python IOS_Model.py`.
//!
//! ```sh
//! cargo run --release --example profile_gpu
//! ```

use dcd_core::profile_run;
use dcd_gpusim::DeviceSpec;
use dcd_nn::SppNetConfig;
use dcd_profiler::ProfileReport;

fn main() {
    let device = DeviceSpec::rtx_a5500();
    let model = SppNetConfig::candidate2(); // the paper's final model
    println!("device: {}", device.name);
    println!("model:  {}\n", model.summary());

    for batch in [1usize, 32] {
        let (profile, trace) = profile_run(&model, (100, 100), &device, batch, 20);
        println!("================ batch size {batch} ================");
        println!("{}", ProfileReport::from_trace(&trace).render());
        println!(
            "summary: latency {:.3} ms | memops/image {:.0} ns | \
             lib-load {:.1}% vs sync {:.1}% | kernel mix gemm/pool/conv = \
             {:.1}/{:.1}/{:.1}% | GPU mem {:.0} MB",
            profile.latency_ns / 1e6,
            profile.memops_per_image_ns,
            profile.lib_load_pct,
            profile.sync_pct,
            profile.gemm_pct,
            profile.pool_pct,
            profile.conv_pct,
            profile.mem_used_bytes as f64 / 1e6,
        );
        println!();
    }
    println!(
        "paper anchors: memops stabilize at 19168 ns (Fig 7); \
         cudaDeviceSynchronize reaches 45.4% at batch 64 (Fig 8); \
         conv takes 77.2% of kernel time at batch 64 (Table 3)."
    );
}
