//! Neural architecture search over the §4.2 SPP-Net space with real trial
//! training (the Retiarii-style multi-trial loop), comparing the paper's
//! random-search strategy against regularized evolution.
//!
//! ```sh
//! cargo run --release --example nas_search
//! ```

use dcd_geodata::dataset::small_config;
use dcd_geodata::PatchDataset;
use dcd_nas::{
    Experiment, RandomSearch, RegularizedEvolution, SppNetSearchSpace, TrainingEvaluator,
};
use dcd_nn::{Sgd, SppNetConfig, TrainConfig};

fn main() {
    let mut ds_config = small_config();
    ds_config.center_jitter = 2;
    let dataset = PatchDataset::generate(&ds_config, 99);
    println!(
        "dataset: {} train / {} test patches",
        dataset.train.len(),
        dataset.test.len()
    );

    let mut base = SppNetConfig::original();
    base.channels = [8, 16, 16]; // keep each trial to a few seconds
    let space = SppNetSearchSpace::around(base);
    println!("search space: {} configurations\n", space.size());

    let evaluator = TrainingEvaluator::new(
        dataset.train.clone(),
        dataset.test.clone(),
        TrainConfig {
            epochs: 8,
            batch_size: 20,
            sgd: Sgd::new(0.015, 0.9, 0.0005),
            ..Default::default()
        },
    );

    let budget = 8;
    println!("--- random search ({budget} trials, the paper's strategy) ---");
    let mut random = RandomSearch::new(space.clone(), budget, 1);
    let exp_random = Experiment::run(&mut random, &evaluator, budget);
    for t in &exp_random.trials {
        println!(
            "  trial {}: AP {:.3}  {} ({:.1}s)",
            t.id, t.score, t.summary, t.duration_s
        );
    }
    let best_r = exp_random.best().expect("trials ran");
    println!("  best: AP {:.3}  {}", best_r.score, best_r.summary);

    println!("\n--- regularized evolution ({budget} trials, extension) ---");
    let mut evo = RegularizedEvolution::new(space, budget, 2);
    evo.population = 4;
    let exp_evo = Experiment::run(&mut evo, &evaluator, budget);
    for t in &exp_evo.trials {
        println!("  trial {}: AP {:.3}  {}", t.id, t.score, t.summary);
    }
    let best_e = exp_evo.best().expect("trials ran");
    println!("  best: AP {:.3}  {}", best_e.score, best_e.summary);

    println!("\n--- successive halving (extension: budget-aware rungs) ---");
    let mut base2 = SppNetConfig::original();
    base2.channels = [8, 16, 16];
    let halving = dcd_nas::successive_halving(
        &SppNetSearchSpace::around(base2),
        &evaluator,
        dcd_nas::HalvingConfig {
            cohort: 8,
            eta: 2,
            min_budget: 0.25,
            seed: 5,
        },
    );
    println!(
        "  {} evaluations, {:.1} full-training budgets spent (vs {} for flat search)",
        halving.experiment.trials.len(),
        halving.budget_spent,
        8
    );
    println!(
        "  winner: AP {:.3}  {}",
        halving.winner_score,
        halving.winner.summary()
    );

    println!("\naccuracy-constrained candidate sets (a(n) > 0.5):");
    println!(
        "  random search: {} candidates",
        exp_random.candidates_above(0.5).len()
    );
    println!(
        "  evolution:     {} candidates",
        exp_evo.candidates_above(0.5).len()
    );

    // Persist the journal like NNI's experiment directory would.
    let path = std::env::temp_dir().join("dcd_nas_journal.json");
    std::fs::write(&path, exp_random.to_json()).expect("write journal");
    println!("\nNAS journal written to {}", path.display());
}
