//! The paper's Fig 5 pipeline end to end: neural architecture search under
//! an accuracy constraint, IOS efficiency ranking on the simulated RTX
//! A5500, and batch-size selection.
//!
//! ```sh
//! cargo run --release --example pipeline
//! ```
//!
//! NAS trials here train real (width-reduced) SPP-Nets on a synthetic
//! watershed; expect a few minutes of CPU time.

use dcd_core::{Pipeline, PipelineConfig};
use dcd_geodata::dataset::small_config;
use dcd_geodata::PatchDataset;
use dcd_nas::{RandomSearch, SppNetSearchSpace, TrainingEvaluator};
use dcd_nn::{Sgd, SppNetConfig, TrainConfig};

fn main() {
    // Dataset for the trial evaluator.
    let mut ds_config = small_config();
    ds_config.center_jitter = 2;
    let dataset = PatchDataset::generate(&ds_config, 42);
    println!(
        "dataset: {} train / {} test patches",
        dataset.train.len(),
        dataset.test.len()
    );

    // Search space around a width-reduced base so each trial trains fast.
    let mut base = SppNetConfig::original();
    base.channels = [8, 16, 16];
    let space = SppNetSearchSpace::around(base);
    let mut strategy = RandomSearch::new(space, 6, 123);
    let evaluator = TrainingEvaluator::new(
        dataset.train.clone(),
        dataset.test.clone(),
        TrainConfig {
            epochs: 10,
            batch_size: 20,
            sgd: Sgd::new(0.015, 0.9, 0.0005),
            ..Default::default()
        },
    );

    // Accuracy-constrained efficiency optimization (§5.4):
    //   maximize e(n) subject to a(n) > A.
    let pipeline = Pipeline::new(
        PipelineConfig::new()
            // Synthetic-data regime; the paper uses A = 0.95.
            .with_accuracy_threshold(0.5)
            .with_max_trials(6),
    );
    let result = pipeline.run(&mut strategy, &evaluator);

    println!("\nNAS journal ({} trials):", result.experiment.trials.len());
    for t in &result.experiment.trials {
        println!("  trial {}: AP {:.3}  {}", t.id, t.score, t.summary);
    }

    println!("\naccuracy-constrained candidates, ranked by IOS-optimized latency:");
    for c in &result.candidates {
        println!(
            "  AP {:.3}  seq {:.3} ms → opt {:.3} ms  {}",
            c.accuracy, c.sequential_ms, c.optimized_ms, c.summary
        );
    }

    println!("\nwinner: {}", result.winner.summary());
    println!("batch-size sweep (per-image latency, optimized schedule):");
    for pt in &result.batch_sweep {
        println!(
            "  batch {:3}: {:8.1} µs/image",
            pt.batch,
            pt.optimized_ns_per_image / 1e3
        );
    }
    println!(
        "optimal batch (diminishing-gains rule): {} — the paper selects 32",
        result.optimal_batch
    );
}
