//! Deployment-mode example: train a detector, then scan an entire watershed
//! raster for drainage crossings (tiling + batched inference + NMS), and
//! use the detections to breach the DEM — the full application loop the
//! paper's system exists to serve.
//!
//! ```sh
//! cargo run --release --example scan_watershed
//! ```

use dcd_core::scan::{match_detections, scan_scene, ScanConfig};
use dcd_core::DrainageCrossingDetector;
use dcd_geodata::dataset::small_config;
use dcd_geodata::hydrology::{breach_at, connectivity};
use dcd_geodata::render::render_bands;
use dcd_geodata::PatchDataset;
use dcd_nn::{Sgd, SppNetConfig, TrainConfig};
use dcd_tensor::SeededRng;

fn main() {
    // 1. Train on patches (as in the quickstart).
    let mut ds_config = small_config();
    ds_config.center_jitter = 2;
    let dataset = PatchDataset::generate(&ds_config, 42);
    let mut arch = SppNetConfig::original();
    arch.channels = [12, 24, 32];
    arch.fc1 = 128;
    println!(
        "training {} on {} patches ...",
        arch.summary(),
        dataset.train.len()
    );
    let mut detector = DrainageCrossingDetector::train(
        arch,
        &dataset.train,
        TrainConfig {
            epochs: 18,
            batch_size: 20,
            sgd: Sgd::new(0.015, 0.9, 0.0005),
            lr_decay_every: Some(7),
            ..Default::default()
        },
        7,
    );
    detector.threshold = 0.6;

    // 2. Scan the whole scene (the "large volume of inferences" of §5.1 —
    //    this is why the paper optimizes throughput and batch size).
    let scene = &dataset.scene;
    let bands = render_bands(scene, 0.03, &mut SeededRng::new(9));
    // Batch 32 is the paper's optimal.
    let scan = ScanConfig::for_patch(64).with_batch_size(32);
    let t0 = std::time::Instant::now();
    let detections = scan_scene(&mut detector, &bands, &scan);
    let dt = t0.elapsed();
    println!(
        "\nscanned {}×{} cells in {:.1}s → {} crossing detections",
        scene.width(),
        scene.height(),
        dt.as_secs_f32(),
        detections.len()
    );
    for d in detections.iter().take(8) {
        println!("  ({:3}, {:3})  score {:.2}", d.x, d.y, d.score);
    }

    // 3. Score against the digitized crossings.
    let (precision, recall) = match_detections(&detections, &scene.crossings, 12);
    println!(
        "\nvs {} digitized crossings: precision {:.2}, recall {:.2}",
        scene.crossings.len(),
        precision,
        recall
    );

    // 4. Breach the road embankments at the *detected* points and measure
    //    how much of the true drainage network is recovered.
    let threshold = ds_config.scene.stream_threshold;
    let bare = connectivity(&scene.dem, threshold);
    let dammed = connectivity(&scene.dem_with_roads, threshold);
    let points: Vec<(usize, usize)> = detections.iter().map(|d| (d.x, d.y)).collect();
    let mut breached = scene.dem_with_roads.clone();
    breach_at(&mut breached, &points, 4);
    let fixed = connectivity(&breached, threshold);
    println!(
        "\ndrainage network preserved (buffered overlap vs bare earth):\n  with digital dams: {:.0}%\n  after breaching at detections: {:.0}%",
        100.0 * dammed.stream_overlap_buffered(&bare, scene.width(), 2),
        100.0 * fixed.stream_overlap_buffered(&bare, scene.width(), 2),
    );

    // 5. Visual artifacts: the scene map with digitized crossings, and the
    //    colour-infrared orthophoto with the detector's boxes.
    let out = std::env::temp_dir();
    let map = dcd_geodata::scene_overlay(scene);
    map.save_ppm(out.join("watershed_map.ppm"))
        .expect("write map");
    let mut cir = dcd_geodata::bands_to_cir(&bands);
    for d in &detections {
        cir.draw_box(d.x, d.y, (d.w / 2.0) as usize + 1, [255, 255, 0]);
    }
    cir.save_ppm(out.join("watershed_detections.ppm"))
        .expect("write cir");
    println!(
        "\nwrote {} and {}",
        out.join("watershed_map.ppm").display(),
        out.join("watershed_detections.ppm").display()
    );
}
