//! Quickstart: generate a synthetic watershed, train a drainage-crossing
//! detector, and run it on held-out patches.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use dcd_core::DrainageCrossingDetector;
use dcd_geodata::dataset::small_config;
use dcd_geodata::PatchDataset;
use dcd_nn::{Sgd, SppNetConfig, TrainConfig};

fn main() {
    // 1. A labelled dataset from a procedural stand-in for the West Fork
    //    Big Blue Watershed: 4-band patches, crossings centred.
    let mut config = small_config();
    config.center_jitter = 2;
    let dataset = PatchDataset::generate(&config, 42);
    println!(
        "dataset: {} train / {} test patches ({} crossings in the scene)",
        dataset.train.len(),
        dataset.test.len(),
        dataset.scene.crossings.len()
    );

    // 2. Train a compact SPP-Net with the paper's SGD recipe (reduced
    //    widths/epochs so this example finishes in about a minute).
    let mut arch = SppNetConfig::original();
    arch.channels = [12, 24, 32];
    arch.fc1 = 128;
    let train_config = TrainConfig {
        epochs: 20,
        batch_size: 20,
        sgd: Sgd::new(0.015, 0.9, 0.0005),
        ..Default::default()
    };
    println!("training {} ...", arch.summary());
    let mut detector = DrainageCrossingDetector::train(arch, &dataset.train, train_config, 7);

    // 3. Evaluate with the paper's metric (average precision, Eq. 1).
    let ap = detector.average_precision(&dataset.test, 0.5);
    println!(
        "test AP@IoU0.5 = {:.3} (paper reports 0.95–0.974 on real NAIP data)",
        ap
    );

    // 4. Detect on a few patches.
    detector.threshold = 0.5;
    for (i, sample) in dataset.test.iter().take(5).enumerate() {
        match detector.detect(&sample.image) {
            Some(det) => println!(
                "patch {i}: crossing detected  score={:.2}  box=({:.2},{:.2},{:.2},{:.2})  truth={}",
                det.score,
                det.bbox.cx,
                det.bbox.cy,
                det.bbox.w,
                det.bbox.h,
                if sample.is_positive() { "crossing" } else { "none" },
            ),
            None => println!(
                "patch {i}: no crossing  truth={}",
                if sample.is_positive() { "crossing" } else { "none" }
            ),
        }
    }
}
