//! Resilience-mode example: scan a watershed on a GPU that misbehaves on
//! purpose. A seeded `FaultPlan` injects transient launch failures, VRAM
//! pressure, and a wedged stream set; the resilient scanner absorbs them
//! with retries, batch degradation, and a sequential-schedule fallback,
//! and every recovery action is tallied in the returned `RunHealth`.
//!
//! ```sh
//! cargo run --release --example resilient_scan
//! ```

use dcd_core::{scan_scene, scan_scene_resilient, DrainageCrossingDetector, ScanConfig};
use dcd_core::{RetryPolicy, SimScanConfig};
use dcd_gpusim::{DeviceSpec, FaultPlan};
use dcd_nn::{SppNet, SppNetConfig};
use dcd_tensor::SeededRng;

fn main() {
    // An untrained detector over a small scene: resilience is about
    // *completing* runs bit-identically, not about detection quality.
    let mut arch = SppNetConfig::tiny();
    arch.in_channels = 4;
    let mut detector =
        DrainageCrossingDetector::from_model(SppNet::new(arch, &mut SeededRng::new(5)));
    detector.threshold = 0.0;
    let ds = dcd_geodata::PatchDataset::generate(&dcd_geodata::dataset::small_config(), 21);
    let bands = dcd_geodata::render::render_bands(&ds.scene, 0.03, &mut SeededRng::new(9));
    let scan = ScanConfig::for_patch(48).with_batch_size(8).with_stride(24);

    let baseline = scan_scene(&mut detector, &bands, &scan);
    println!("fault-free scan: {} detections", baseline.len());

    // 1. Transient launch failures → absorbed by retries.
    let sim = SimScanConfig::new()
        .with_device(DeviceSpec::test_gpu())
        .with_fault_plan(FaultPlan {
            seed: 1234,
            launch_failure_rate: 0.03,
            ..FaultPlan::none()
        });
    let r = scan_scene_resilient(&mut detector, &bands, &scan, &sim).expect("retries absorb");
    println!(
        "\n[transient faults]   {} detections (identical: {}), health: {:?}",
        r.detections.len(),
        r.detections == baseline,
        r.health
    );

    // 2. VRAM pressure → the batch degrades by halving until it fits.
    let graph = dcd_ios::lower_sppnet(detector.config(), (scan.patch_size, scan.patch_size));
    let spec = DeviceSpec::test_gpu();
    let scan64 = scan.with_batch_size(64);
    let sim = SimScanConfig::new()
        .with_device(spec.clone())
        .with_fault_plan(FaultPlan {
            vram_pressure_bytes: spec.mem_capacity
                - (graph.weight_bytes() + graph.activation_bytes(20)),
            ..FaultPlan::none()
        });
    let r =
        scan_scene_resilient(&mut detector, &bands, &scan64, &sim).expect("degrades and completes");
    println!(
        "[vram pressure]      batch 64 → {} ({} degradations), identical: {}, health: {:?}",
        r.batch,
        r.health.degradations,
        r.detections == baseline,
        r.health
    );

    // 3. Persistently wedged streams → fall back to the sequential schedule.
    let sim = SimScanConfig::new()
        .with_device(DeviceSpec::test_gpu())
        .with_fault_plan(FaultPlan {
            persistent_launch_failure_streams: (1..16).collect(),
            ..FaultPlan::none()
        })
        .with_ios(dcd_ios::IosOptions::new().with_max_group_len(3))
        .with_retry(RetryPolicy::default());
    let r = scan_scene_resilient(&mut detector, &bands, &scan, &sim).expect("fallback completes");
    println!(
        "[wedged streams]     fell back: {}, identical: {}, health: {:?}",
        r.fell_back,
        r.detections == baseline,
        r.health
    );
}
