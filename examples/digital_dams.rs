//! The paper's Fig 1 motivation, reproduced end to end: road embankments in
//! a DEM act as "digital dams" that fragment the modelled drainage network;
//! breaching the DEM at *detected* drainage-crossing locations restores
//! hydrologic connectivity.
//!
//! ```sh
//! cargo run --release --example digital_dams
//! ```

use dcd_geodata::hydrology::{breach_at, connectivity};
use dcd_geodata::{generate_scene, DemConfig, SceneConfig};
use dcd_tensor::SeededRng;

fn main() {
    let config = SceneConfig {
        dem: DemConfig {
            width: 512,
            height: 512,
            ..Default::default()
        },
        road_spacing: 96,
        stream_threshold: 350.0,
        embankment_height: 2.5,
        ..Default::default()
    };
    let scene = generate_scene(&config, &mut SeededRng::new(2023));
    println!(
        "scene: {}×{} cells, {} stream cells, {} drainage crossings",
        scene.width(),
        scene.height(),
        scene.streams.count(|v| v > 0.0),
        scene.crossings.len()
    );

    let threshold = config.stream_threshold;

    // (A) Bare-earth DEM: the "true" drainage network.
    let bare = connectivity(&scene.dem, threshold);
    println!("\n(A) bare-earth DEM (ground truth):");
    println!(
        "    stream cells {}, fragments {}",
        bare.stream_cells, bare.fragments
    );

    // (B) DEM with road embankments: digital dams displace and fragment the
    //     modelled network (Fig 1A — "did not incorporate culvert
    //     information"). Depression filling routes water over spill points,
    //     so the damage shows up as *misled* flowlines: stream cells that no
    //     longer coincide with the true network.
    let dammed = connectivity(&scene.dem_with_roads, threshold);
    println!("\n(B) DEM with road embankments (digital dams):");
    println!(
        "    stream cells {}, fragments {}, true network preserved {:.0}%",
        dammed.stream_cells,
        dammed.fragments,
        100.0 * dammed.stream_overlap_buffered(&bare, scene.width(), 2)
    );

    // (C) Breach at the crossing locations (in the full system these come
    //     from the CNN detector; here we use the scene's digitized points,
    //     i.e. a perfect detector) — Fig 1B.
    let mut breached = scene.dem_with_roads.clone();
    breach_at(&mut breached, &scene.crossings, 4);
    let fixed = connectivity(&breached, threshold);
    println!("\n(C) embankments breached at detected crossings:");
    println!(
        "    stream cells {}, fragments {}, true network preserved {:.0}%",
        fixed.stream_cells,
        fixed.fragments,
        100.0 * fixed.stream_overlap_buffered(&bare, scene.width(), 2)
    );

    let lost = 100.0 * (1.0 - dammed.stream_overlap_buffered(&bare, scene.width(), 2));
    let after = 100.0 * fixed.stream_overlap_buffered(&bare, scene.width(), 2);
    println!(
        "\ndigital dams mislead {lost:.0}% of the true drainage network; \
         breaching at the crossings brings preservation back to {after:.0}%"
    );
}
