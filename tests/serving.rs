//! Chaos-scenario acceptance suite for the serving runtime.
//!
//! Each test runs a named, seeded scenario from the `dcd-serve` catalog
//! and asserts the SLO invariants the runtime exists to uphold:
//! conservation (every offered request accounted for exactly once),
//! bit-reproducibility (same scenario + seed ⇒ identical counts and
//! breaker transition sequence), breaker recovery after a bounded fault
//! window, bounded tail latency in degraded modes, and orphan-free drain.

use dcd_serve::{run_scenario, scenario, scenario_names, BreakerState, ServeReport};

fn run(name: &str, seed: u64) -> ServeReport {
    let sc = scenario(name, seed).unwrap_or_else(|| panic!("unknown scenario {name}"));
    run_scenario(&sc).0
}

/// served + late + shed + dropped + unserved == offered, on every
/// scenario and a spread of seeds.
#[test]
fn every_scenario_conserves_requests() {
    for name in scenario_names() {
        for seed in [1u64, 13, 977] {
            let report = run(name, seed);
            assert!(
                report.conserved(),
                "{name} seed {seed} leaks requests: {report:?}"
            );
            assert!(report.offered > 0, "{name} generated an empty load");
        }
    }
}

/// Same scenario name + seed ⇒ identical served/shed/dropped counts and
/// an identical breaker transition sequence, run after run. (The CI
/// harness re-runs this whole suite under RAYON_NUM_THREADS=1 to pin the
/// thread-count half of the claim.)
#[test]
fn scenarios_are_bit_reproducible() {
    for name in scenario_names() {
        let a = run(name, 42);
        let b = run(name, 42);
        assert_eq!(a, b, "{name} diverged between identical runs");
        // Different seed must be able to change the run (sanity check
        // that the seed is actually threaded through).
        let c = run(name, 43);
        assert_ne!(
            (a.offered, a.end_ns),
            (c.offered, c.end_ns),
            "{name} ignores its seed"
        );
    }
}

/// The acceptance bar from the issue: under `fault-burst` the runtime
/// serves ≥ 90% of offered requests within deadline, and the breaker —
/// having opened during the fault window — returns to Closed after it.
#[test]
fn fault_burst_meets_slo_and_breaker_recloses() {
    for seed in [1u64, 7, 42, 1234] {
        let report = run("fault-burst", seed);
        assert!(
            report.served_fraction() >= 0.90,
            "seed {seed}: only {:.1}% within deadline: {report:?}",
            report.served_fraction() * 100.0
        );
        let opened = report
            .breaker_transitions
            .iter()
            .any(|&(_, s)| s == BreakerState::Open);
        assert!(opened, "seed {seed}: breaker never opened during the burst");
        assert_eq!(
            report.final_breaker_state(),
            BreakerState::Closed,
            "seed {seed}: breaker stuck non-closed: {:?}",
            report.breaker_transitions
        );
        assert!(
            report.breaker_open_ns > 0,
            "seed {seed}: no open time recorded"
        );
        assert!(
            report.health.faults_seen() > 0,
            "seed {seed}: fault window injected nothing"
        );
    }
}

/// Degraded-mode latency stays bounded: even while overload sheds most of
/// the burst, nothing that *is* served waits anywhere near its deadline —
/// admission control refuses work instead of queueing it into uselessness.
#[test]
fn overload_sheds_instead_of_smearing_latency() {
    let sc = scenario("overload", 7).unwrap();
    let report = run_scenario(&sc).0;
    assert!(report.conserved());
    assert!(
        report.shed_capacity + report.shed_brownout > 0,
        "an overload scenario that sheds nothing is not overloaded"
    );
    assert!(
        report.brownout_transitions.len() > 1,
        "brownout must engage and recover: {:?}",
        report.brownout_transitions
    );
    let deadline = sc.arrivals.deadline_ns;
    assert!(
        report.p99_latency_ns <= deadline / 2,
        "p99 {} ns smeared toward the {} ns deadline",
        report.p99_latency_ns,
        deadline
    );
}

/// Drain leaves no orphans: after the run every offered request has a
/// terminal outcome, and on fault-free scenarios the queue empties
/// completely (nothing unserved).
#[test]
fn drain_leaves_no_orphans() {
    for name in ["clean", "overload", "vram-squeeze"] {
        let report = run(name, 3);
        assert!(report.conserved(), "{name}: {report:?}");
        assert_eq!(report.unserved, 0, "{name} left requests in the queue");
    }
    // Even with faults, the drain grace bounds the run: whatever could
    // not be served is reported, not lost.
    for name in ["fault-burst", "broken-streams", "hang"] {
        let report = run(name, 3);
        assert!(report.conserved(), "{name}: {report:?}");
    }
}

/// Scenario-specific resilience mechanisms actually engage.
#[test]
fn scenarios_exercise_their_mechanisms() {
    let squeeze = run("vram-squeeze", 5);
    assert!(
        squeeze.health.degradations > 0,
        "vram-squeeze never degraded the batch: {squeeze:?}"
    );
    assert!(squeeze.served_fraction() > 0.95, "{squeeze:?}");

    let broken = run("broken-streams", 5);
    assert!(
        broken.fell_back,
        "broken-streams must latch the sequential fallback"
    );
    assert!(broken.served_fraction() > 0.95, "{broken:?}");

    let hang = run("hang", 5);
    assert_eq!(hang.health.device_hangs, 1, "{hang:?}");
    assert!(hang.served_fraction() > 0.95, "{hang:?}");

    let clean = run("clean", 5);
    assert!(clean.health.is_clean(), "{clean:?}");
    assert_eq!(clean.served, clean.offered, "{clean:?}");
    assert!(clean.breaker_transitions.is_empty(), "{clean:?}");
}

/// The device trace from a serving run carries real work (kernels and
/// memcpys), so the merged host+device timeline has something to show.
#[test]
fn serving_run_produces_a_device_trace() {
    let sc = scenario("clean", 11).unwrap();
    let (report, trace) = run_scenario(&sc);
    assert!(report.batches > 0);
    assert!(!trace.records.is_empty());
}
