//! Fault-injection integration tests: the acceptance scenarios for the
//! resilient-inference stack, all deterministic from fixed seeds.
//!
//! 1. A scene scan with injected *transient* kernel-launch failures
//!    completes via retries and yields detections identical to the
//!    fault-free run.
//! 2. VRAM pressure that rules out the requested batch degrades the batch
//!    (halving) and the scan still completes.
//! 3. A *persistent* per-stream launch failure makes the IOS-optimized
//!    multi-stream schedule unusable; the scan falls back to the sequential
//!    baseline and completes.
//!
//! Each scenario's recovery actions are visible in the returned
//! [`RunHealth`].

use dcd_core::{
    scan_scene, scan_scene_resilient, DrainageCrossingDetector, ScanConfig, SimScanConfig,
};
use dcd_geodata::dataset::small_config;
use dcd_geodata::render::render_bands;
use dcd_geodata::PatchDataset;
use dcd_gpusim::{DeviceSpec, FaultPlan};
use dcd_nn::{SppNet, SppNetConfig};
use dcd_tensor::{SeededRng, Tensor};

/// A deterministic untrained detector over 4-band geodata patches: resilience
/// is about *completing* runs bit-identically, not about detection quality.
fn fixture() -> (DrainageCrossingDetector, Tensor, ScanConfig) {
    let mut arch = SppNetConfig::tiny();
    arch.in_channels = 4;
    let model = SppNet::new(arch, &mut SeededRng::new(5));
    let mut detector = DrainageCrossingDetector::from_model(model);
    detector.threshold = 0.0; // fire on every tile; NMS dedups
    let ds = PatchDataset::generate(&small_config(), 21);
    let bands = render_bands(&ds.scene, 0.03, &mut SeededRng::new(9));
    let scan = ScanConfig::for_patch(48).with_batch_size(8).with_stride(24);
    (detector, bands, scan)
}

#[test]
fn transient_launch_failures_retry_to_identical_detections() {
    let (mut detector, bands, scan) = fixture();
    let fault_free = scan_scene(&mut detector, &bands, &scan);
    assert!(!fault_free.is_empty(), "fixture produced no detections");

    let sim = SimScanConfig::new()
        .with_device(DeviceSpec::test_gpu())
        .with_fault_plan(FaultPlan {
            seed: 1234,
            launch_failure_rate: 0.03,
            ..FaultPlan::none()
        });
    let report = scan_scene_resilient(&mut detector, &bands, &scan, &sim)
        .expect("retries absorb transient launch failures");
    assert_eq!(
        report.detections, fault_free,
        "a recovered scan must be bit-identical to the fault-free one"
    );
    assert!(
        report.health.launch_failures > 0,
        "seed 1234 at 1.5% must inject at least one launch failure"
    );
    assert_eq!(
        report.health.retries, report.health.launch_failures,
        "every transient failure costs exactly one retry"
    );
    assert_eq!(report.health.degradations, 0);
    assert_eq!(report.health.fallbacks, 0);
    assert!(!report.fell_back);
    assert_eq!(report.batch, 8, "batch untouched by transient faults");
}

#[test]
fn vram_pressure_degrades_batch_and_scan_completes() {
    let (mut detector, bands, scan) = fixture();
    let fault_free = scan_scene(&mut detector, &bands, &scan);
    let scan = scan.with_batch_size(64);

    // Leave usable VRAM for the weights plus ~20 batches' worth of
    // activations: batch 64 cannot fit, so the runner halves 64 → 32 → 16.
    let graph = dcd_ios::lower_sppnet(detector.config(), (scan.patch_size, scan.patch_size));
    let spec = DeviceSpec::test_gpu();
    let usable = graph.weight_bytes() + graph.activation_bytes(20);
    let sim = SimScanConfig::new()
        .with_device(spec.clone())
        .with_fault_plan(FaultPlan {
            vram_pressure_bytes: spec.mem_capacity - usable,
            ..FaultPlan::none()
        });
    let report = scan_scene_resilient(&mut detector, &bands, &scan, &sim)
        .expect("degraded batch still completes");
    assert_eq!(report.batch, 16, "64 → 32 → 16 under this pressure");
    assert_eq!(report.health.degradations, 2);
    assert_eq!(report.health.oom_events, 2);
    assert_eq!(report.health.launch_failures, 0);
    assert!(!report.fell_back);
    assert_eq!(
        report.detections, fault_free,
        "batch size must not change what is detected"
    );
}

#[test]
fn persistent_stream_failure_falls_back_to_sequential() {
    let (mut detector, bands, scan) = fixture();
    let fault_free = scan_scene(&mut detector, &bands, &scan);

    // Every stream except 0 refuses all launches: the IOS-optimized
    // multi-stream schedule can never finish an inference, the sequential
    // baseline (stream 0 only) always can. Chain pruning is capped so IOS
    // actually parallelizes this small model's SPP branches (unbounded
    // chaining degenerates to one stream and there is nothing to fall back
    // from).
    let sim = SimScanConfig::new()
        .with_device(DeviceSpec::test_gpu())
        .with_fault_plan(FaultPlan {
            persistent_launch_failure_streams: (1..16).collect(),
            ..FaultPlan::none()
        })
        .with_ios(dcd_ios::IosOptions::new().with_max_group_len(3));
    let report = scan_scene_resilient(&mut detector, &bands, &scan, &sim)
        .expect("sequential fallback completes the scan");
    assert!(report.fell_back, "scan must abandon the IOS schedule");
    assert_eq!(report.health.fallbacks, 1);
    assert!(
        report.health.launch_failures >= sim.retry.max_attempts as u64,
        "the whole retry budget was burned before falling back"
    );
    assert_eq!(report.health.device_hangs, 0);
    assert_eq!(
        report.detections, fault_free,
        "the fallback schedule computes the same detections"
    );
}

#[test]
fn resilient_scan_is_deterministic_across_runs() {
    let (mut detector, bands, scan) = fixture();
    let sim = SimScanConfig::new()
        .with_device(DeviceSpec::test_gpu())
        .with_fault_plan(FaultPlan {
            seed: 77,
            launch_failure_rate: 0.01,
            memcpy_failure_rate: 0.005,
            ..FaultPlan::none()
        });
    let a = scan_scene_resilient(&mut detector, &bands, &scan, &sim).expect("completes");
    let b = scan_scene_resilient(&mut detector, &bands, &scan, &sim).expect("completes");
    assert_eq!(a.detections, b.detections);
    assert_eq!(
        a.health, b.health,
        "fault draws are a pure function of the seed"
    );
    assert_eq!(a.sim_ns, b.sim_ns);
}
