//! Cross-crate integration tests: the full path from synthetic geodata
//! through training, NAS, IOS scheduling and GPU profiling.

use dcd_core::{profile_run, DrainageCrossingDetector, Pipeline, PipelineConfig};
use dcd_geodata::dataset::small_config;
use dcd_geodata::PatchDataset;
use dcd_gpusim::DeviceSpec;
use dcd_nas::{FunctionalEvaluator, RandomSearch, SppNetSearchSpace};
use dcd_nn::{Sgd, SppNetConfig, TrainConfig};

fn quick_dataset(seed: u64) -> PatchDataset {
    let mut cfg = small_config();
    cfg.center_jitter = 2;
    PatchDataset::generate(&cfg, seed)
}

fn quick_train_config() -> TrainConfig {
    TrainConfig {
        epochs: 12,
        batch_size: 16,
        sgd: Sgd::new(0.015, 0.9, 0.0005),
        lr_decay_every: Some(5),
        ..Default::default()
    }
}

#[test]
fn geodata_to_detector_end_to_end() {
    // Generate → train → evaluate: the quickstart path, asserted.
    let dataset = quick_dataset(42);
    assert!(dataset.train.len() >= 10, "dataset too small");
    let mut arch = SppNetConfig::original();
    arch.channels = [8, 16, 16];
    arch.fc1 = 64;
    let mut detector =
        DrainageCrossingDetector::train(arch, &dataset.train, quick_train_config(), 7);
    let ap = detector.average_precision(&dataset.test, 0.5);
    assert!(
        ap > 0.5,
        "detector should comfortably beat chance on synthetic data, got AP {ap}"
    );
}

#[test]
fn trained_detector_feeds_hydrology_breaching() {
    // The full application loop: detect crossings in patches around road ∩
    // stream candidates, breach the DEM there, verify connectivity improves.
    use dcd_geodata::hydrology::{breach_at, connectivity};
    use dcd_geodata::render::clip_patch;
    use dcd_geodata::render::render_bands;
    use dcd_tensor::SeededRng;

    let dataset = quick_dataset(17);
    let mut arch = SppNetConfig::original();
    arch.channels = [8, 16, 16];
    arch.fc1 = 64;
    let mut detector =
        DrainageCrossingDetector::train(arch, &dataset.train, quick_train_config(), 3);
    detector.threshold = 0.5;

    // Score a patch around every digitized crossing of a *fresh* scene.
    let scene = dataset.scene.clone();
    let bands = render_bands(&scene, 0.03, &mut SeededRng::new(5));
    let mut detected: Vec<(usize, usize)> = Vec::new();
    let patch = 64usize;
    for &(cx, cy) in &scene.crossings {
        if cx < patch / 2
            || cy < patch / 2
            || cx + patch / 2 >= scene.width()
            || cy + patch / 2 >= scene.height()
        {
            continue;
        }
        let image = clip_patch(&bands, cx, cy, patch).map(|v| (v - 0.5) * 2.0);
        if detector.detect(&image).is_some() {
            detected.push((cx, cy));
        }
    }
    assert!(
        detected.len() * 2 >= scene.crossings.len(),
        "detector found only {}/{} crossings",
        detected.len(),
        scene.crossings.len()
    );

    // Breaching at the detected points must improve network preservation.
    let threshold = 100.0;
    let bare = connectivity(&scene.dem, threshold);
    let dammed = connectivity(&scene.dem_with_roads, threshold);
    let mut breached_dem = scene.dem_with_roads.clone();
    breach_at(&mut breached_dem, &detected, 4);
    let fixed = connectivity(&breached_dem, threshold);
    let before = dammed.stream_overlap_buffered(&bare, scene.width(), 2);
    let after = fixed.stream_overlap_buffered(&bare, scene.width(), 2);
    assert!(
        after > before,
        "breaching at detected crossings should help: {before} → {after}"
    );
}

#[test]
fn pipeline_to_profiling_end_to_end() {
    // Fig 5 pipeline with a fast proxy evaluator, then profile the winner.
    let pipeline = Pipeline::new(
        PipelineConfig::new()
            .with_max_trials(5)
            .with_batch_sizes(vec![1, 4, 16])
            .with_warmup(1)
            .with_iterations(2)
            .with_accuracy_threshold(0.9),
    );
    let mut strategy = RandomSearch::new(SppNetSearchSpace::paper(), 5, 11);
    let evaluator = FunctionalEvaluator::new(|c: &SppNetConfig| {
        0.90 + (c.fc1 as f64).log2() / 13.0 * 0.05 + c.spp_top_level as f64 * 0.002
    });
    let result = pipeline.run(&mut strategy, &evaluator);
    assert!(!result.candidates.is_empty());
    assert!(result.candidates[0].optimized_ms <= result.candidates[0].sequential_ms);

    let (profile, trace) = profile_run(
        &result.winner,
        (100, 100),
        &DeviceSpec::rtx_a5500(),
        result.optimal_batch,
        5,
    );
    assert!(profile.latency_ns > 0.0);
    assert!(profile.conv_pct > 0.0 && profile.gemm_pct > 0.0);
    let stats = dcd_profiler::ProfileReport::from_trace(&trace).render();
    assert!(stats.contains("cudaDeviceSynchronize"));
}

#[test]
fn simulated_efficiency_and_profile_are_consistent() {
    // The latency the executor reports and the kernel times in the trace
    // must agree: kernel time ≤ total latency per iteration.
    use dcd_gpusim::KernelClass;
    let cfg = SppNetConfig::original();
    let iters = 4usize;
    let (profile, trace) = profile_run(&cfg, (100, 100), &DeviceSpec::rtx_a5500(), 2, iters);
    let kernel_total: u64 = [
        KernelClass::Conv,
        KernelClass::Gemm,
        KernelClass::Pool,
        KernelClass::Elementwise,
        KernelClass::Copy,
    ]
    .iter()
    .map(|&c| trace.kernel_time(c))
    .sum();
    let latency_total = profile.latency_ns * iters as f64;
    assert!(
        (kernel_total as f64) <= latency_total * 1.05,
        "kernel busy {kernel_total} ns exceeds total latency {latency_total} ns"
    );
    assert!(kernel_total > 0);
}

#[test]
fn table1_and_table2_configs_are_the_same_objects() {
    // The configs trained for Table 1 are exactly the configs benchmarked
    // for Table 2 — a consistency guard on the reproduction.
    let t1: Vec<_> = SppNetConfig::table1().into_iter().map(|(_, c)| c).collect();
    assert_eq!(t1.len(), 4);
    let pipeline = Pipeline::new(PipelineConfig::new().with_warmup(0).with_iterations(1));
    for cfg in &t1 {
        let (seq, opt, schedule) = pipeline.benchmark(cfg);
        assert!(opt <= seq);
        assert!(schedule.num_ops() >= 14);
    }
}
