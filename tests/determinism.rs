//! Full-stack determinism: the property every experiment in EXPERIMENTS.md
//! silently relies on. Same seeds ⇒ bit-identical datasets, models,
//! schedules and simulated latencies.

use dcd_geodata::dataset::small_config;
use dcd_geodata::PatchDataset;
use dcd_gpusim::DeviceSpec;
use dcd_ios::{ios_schedule, lower_sppnet, measure_latency, IosOptions, StageCostModel};
use dcd_nas::{FunctionalEvaluator, RandomSearch, SppNetSearchSpace};
use dcd_nn::{Sgd, SppNet, SppNetConfig, TrainConfig, Trainer};
use dcd_tensor::SeededRng;

#[test]
fn dataset_generation_is_deterministic() {
    let cfg = small_config();
    let a = PatchDataset::generate(&cfg, 7);
    let b = PatchDataset::generate(&cfg, 7);
    assert_eq!(a.train.len(), b.train.len());
    for (x, y) in a.train.iter().zip(b.train.iter()) {
        assert_eq!(x.image.data(), y.image.data());
        assert_eq!(x.label, y.label);
    }
    assert_eq!(a.scene.crossings, b.scene.crossings);
}

#[test]
fn training_is_deterministic() {
    let cfg = small_config();
    let ds = PatchDataset::generate(&cfg, 3);
    let tc = TrainConfig {
        epochs: 3,
        batch_size: 8,
        sgd: Sgd::new(0.01, 0.9, 0.0005),
        ..Default::default()
    };
    let run = || {
        let mut rng = SeededRng::new(5);
        let mut arch = SppNetConfig::tiny();
        arch.in_channels = 4;
        let mut model = SppNet::new(arch, &mut rng);
        Trainer::new(tc).train(&mut model, &ds.train);
        let x = dcd_tensor::Tensor::stack(&[ds.test[0].image.clone()]);
        model.forward(&x).obj_logits.data().to_vec()
    };
    assert_eq!(run(), run());
}

#[test]
fn scheduling_and_simulation_are_deterministic() {
    let graph = lower_sppnet(&SppNetConfig::candidate2(), (100, 100));
    let dev = DeviceSpec::rtx_a5500();
    let run = || {
        let mut cost = StageCostModel::new(&graph, dev.clone(), 4);
        let s = ios_schedule(&graph, &mut cost, IosOptions::default());
        let t = measure_latency(&graph, &s, 4, &dev, 1, 3);
        (s, t.mean_ns as u64)
    };
    let (s1, t1) = run();
    let (s2, t2) = run();
    assert_eq!(s1, s2, "DP must pick the same schedule");
    assert!(t1.abs_diff(t2) <= 2, "latency {t1} vs {t2}");
}

#[test]
fn nas_experiments_are_deterministic() {
    let eval =
        FunctionalEvaluator::new(|c: &SppNetConfig| c.fc1 as f64 + c.conv1_kernel as f64 * 10.0);
    let run = || {
        let mut strat = RandomSearch::new(SppNetSearchSpace::paper(), 10, 42);
        dcd_nas::Experiment::run(&mut strat, &eval, 10)
    };
    let a = run();
    let b = run();
    assert_eq!(a.trials.len(), b.trials.len());
    for (x, y) in a.trials.iter().zip(b.trials.iter()) {
        assert_eq!(x.config, y.config);
        assert_eq!(x.score, y.score);
    }
}

#[test]
fn different_seeds_give_different_worlds() {
    let cfg = small_config();
    let a = PatchDataset::generate(&cfg, 1);
    let b = PatchDataset::generate(&cfg, 2);
    assert_ne!(a.scene.crossings, b.scene.crossings);
}
