//! Integration tests for the unified host+device observability stack: an
//! instrumented scan plus a simulated device trace must merge into one
//! Perfetto-loadable Chrome-trace timeline, with the host metrics registry
//! ticking alongside.
//!
//! The span buffers and metrics registry are process-global, so every test
//! here serializes on one lock and drains/resets state up front.

use dcd_core::scan::{scan_scene, ScanConfig};
use dcd_core::{profile_run, DrainageCrossingDetector};
use dcd_gpusim::DeviceSpec;
use dcd_nn::{SppNet, SppNetConfig};
use dcd_profiler::{ChromeTrace, ProfileReport, DEVICE_PID, HOST_PID};
use dcd_tensor::{SeededRng, Tensor};
use std::sync::Mutex;

static OBS_LOCK: Mutex<()> = Mutex::new(());

/// A small untrained detector over 4-band geodata, plus rendered bands.
fn fixture() -> (DrainageCrossingDetector, Tensor, ScanConfig) {
    let mut arch = SppNetConfig::tiny();
    arch.in_channels = 4;
    let model = SppNet::new(arch, &mut SeededRng::new(5));
    let mut detector = DrainageCrossingDetector::from_model(model);
    detector.threshold = 0.0;
    let ds = dcd_geodata::PatchDataset::generate(&dcd_geodata::dataset::small_config(), 21);
    let bands = dcd_geodata::render::render_bands(&ds.scene, 0.03, &mut SeededRng::new(9));
    let scan = ScanConfig::for_patch(48)
        .with_batch_size(8)
        .with_stride(24)
        .with_obs(true);
    (detector, bands, scan)
}

/// Runs an instrumented scan and a simulated profile, and returns the
/// merged report.
fn merged_report() -> ProfileReport {
    dcd_obs::drain_spans();
    dcd_obs::reset_metrics();
    let (mut detector, bands, scan) = fixture();
    let dets = scan_scene(&mut detector, &bands, &scan);
    assert!(!dets.is_empty(), "fixture produced no detections");
    let (_, trace) = profile_run(
        &SppNetConfig::tiny(),
        (48, 48),
        &DeviceSpec::rtx_a5500(),
        4,
        3,
    );
    ProfileReport::from_trace(&trace).with_host_spans(dcd_obs::drain_spans())
}

#[test]
fn merged_timeline_covers_host_and_device() {
    let _guard = OBS_LOCK.lock().unwrap();
    let report = merged_report();
    let chrome = report.chrome_trace();

    let x_events: Vec<_> = chrome.traceEvents.iter().filter(|e| e.ph == "X").collect();
    assert!(
        x_events.iter().any(|e| e.pid == HOST_PID),
        "no host events in the merged timeline"
    );
    assert!(
        x_events.iter().any(|e| e.pid == DEVICE_PID),
        "no device events in the merged timeline"
    );

    // The instrumented hot paths must all be present as host spans.
    let host_names: Vec<&str> = x_events
        .iter()
        .filter(|e| e.pid == HOST_PID)
        .map(|e| e.name.as_str())
        .collect();
    for expected in [
        "scan.scene",
        "scan.chunk",
        "sppnet.forward_inference",
        "conv2d",
        "gemm",
    ] {
        assert!(
            host_names.contains(&expected),
            "missing host span {expected:?} in {host_names:?}"
        );
    }

    // The simulated device contributes kernel and memop tracks.
    let device_cats: Vec<&str> = x_events
        .iter()
        .filter(|e| e.pid == DEVICE_PID)
        .map(|e| e.cat.as_str())
        .collect();
    assert!(device_cats.iter().any(|c| c.starts_with("kernel.")));
    assert!(device_cats.contains(&"memop"));
    assert!(device_cats.contains(&"cuda_api"));
}

#[test]
fn merged_timeline_tracks_are_monotone_and_named() {
    let _guard = OBS_LOCK.lock().unwrap();
    let report = merged_report();
    let chrome = report.chrome_trace();

    // Every (pid, tid) track is sorted by start time, so Perfetto renders
    // it without reordering.
    let mut tracks: Vec<(u32, u32)> = chrome
        .traceEvents
        .iter()
        .filter(|e| e.ph == "X")
        .map(|e| (e.pid, e.tid))
        .collect();
    tracks.sort_unstable();
    tracks.dedup();
    assert!(tracks.len() >= 3, "expected host + several device tracks");
    for (pid, tid) in tracks {
        let ts: Vec<f64> = chrome
            .track(pid, tid)
            .iter()
            .filter(|e| e.ph == "X")
            .map(|e| e.ts)
            .collect();
        assert!(
            ts.windows(2).all(|w| w[0] <= w[1]),
            "track ({pid},{tid}) not monotone"
        );
    }

    // Both processes carry metadata names for the Perfetto sidebar.
    let meta_names: Vec<String> = chrome
        .traceEvents
        .iter()
        .filter(|e| e.ph == "M")
        .filter_map(|e| e.args.name.clone())
        .collect();
    assert!(meta_names.iter().any(|n| n == "host"));
    assert!(meta_names.iter().any(|n| n.contains("gpusim")));
}

#[test]
fn chrome_trace_json_round_trips() {
    let _guard = OBS_LOCK.lock().unwrap();
    let report = merged_report();
    let chrome = report.chrome_trace();
    let json = chrome.to_json();
    assert!(json.starts_with("{\"traceEvents\":["));
    let back = ChromeTrace::from_json(&json).expect("valid Chrome-trace JSON");
    assert_eq!(back, chrome);
}

#[test]
fn scan_metrics_tick_and_render() {
    let _guard = OBS_LOCK.lock().unwrap();
    dcd_obs::drain_spans();
    dcd_obs::reset_metrics();
    let (mut detector, bands, scan) = fixture();
    let _ = scan_scene(&mut detector, &bands, &scan);
    let snap = dcd_obs::snapshot();
    let patches = snap.counter("scan.patches").expect("scan.patches counted");
    assert!(patches > 0);
    let flops = snap.counter("conv.flops").expect("conv flops counted");
    assert!(flops > 0);
    assert!(snap.render().contains("scan.patches"));
    dcd_obs::drain_spans();
}

#[test]
fn report_render_includes_host_span_summary() {
    let _guard = OBS_LOCK.lock().unwrap();
    let report = merged_report();
    let text = report.render();
    assert!(text.contains("cudaLaunchKernel"), "device API section lost");
    assert!(
        text.contains("Host Span Summary"),
        "host section missing from render"
    );
    assert!(text.contains("scan.scene"));
}
