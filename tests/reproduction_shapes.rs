//! Integration tests asserting the *shape* of every paper artifact the
//! simulator regenerates — the contract EXPERIMENTS.md reports against.
//!
//! These are the repository's reproduction guarantees: if a refactor of the
//! cost model or scheduler breaks one of the paper's qualitative findings,
//! these tests fail.

use dcd_core::{profile_batch_sweep, Pipeline, PipelineConfig};
use dcd_gpusim::DeviceSpec;
use dcd_nn::SppNetConfig;

const BATCHES: [usize; 7] = [1, 2, 4, 8, 16, 32, 64];

fn sweep() -> Vec<dcd_core::BatchProfile> {
    profile_batch_sweep(
        &SppNetConfig::candidate2(),
        (100, 100),
        &DeviceSpec::rtx_a5500(),
        &BATCHES,
        20,
    )
}

#[test]
fn table2_shape_optimized_beats_sequential_for_all_models() {
    let pipeline = Pipeline::new(PipelineConfig::new().with_warmup(1).with_iterations(3));
    for (name, cfg) in SppNetConfig::table1() {
        let (seq, opt, _) = pipeline.benchmark(&cfg);
        assert!(opt < seq, "{name}: optimized {opt} !< sequential {seq}");
        // Paper magnitudes: a few tenths of a millisecond at batch 1.
        assert!((0.05..2.0).contains(&seq), "{name}: sequential {seq} ms");
        // Paper speedups: 1.1× to 1.9×.
        let speedup = seq / opt;
        assert!(
            (1.02..2.5).contains(&speedup),
            "{name}: speedup {speedup} outside plausible range"
        );
    }
}

#[test]
fn fig6_shape_efficiency_falls_and_gains_diminish() {
    let pipeline = Pipeline::new(PipelineConfig::new().with_warmup(1).with_iterations(3));
    let sweep = pipeline.batch_sweep(&SppNetConfig::candidate2());
    // Per-image latency decreases monotonically for both schedules.
    for w in sweep.windows(2) {
        assert!(w[1].sequential_ns_per_image < w[0].sequential_ns_per_image);
        assert!(w[1].optimized_ns_per_image < w[0].optimized_ns_per_image);
    }
    // Optimized never loses to sequential.
    for pt in &sweep {
        assert!(pt.optimized_ns_per_image <= pt.sequential_ns_per_image);
    }
    // The relative gain shrinks with batch (diminishing returns).
    let gain = |pt: &dcd_core::pipeline::BatchPoint| {
        1.0 - pt.optimized_ns_per_image / pt.sequential_ns_per_image
    };
    assert!(gain(&sweep[0]) > 2.0 * gain(&sweep[sweep.len() - 1]));
    // The §6.4 rule lands on the paper's batch size.
    assert_eq!(Pipeline::pick_optimal_batch(&sweep), 32);
}

#[test]
fn fig7_shape_memops_stabilize_near_paper_value() {
    let profiles = sweep();
    // Strictly decreasing per-image memop cost.
    for w in profiles.windows(2) {
        assert!(w[1].memops_per_image_ns <= w[0].memops_per_image_ns);
    }
    // Stabilized within 5% from batch 16 on, in the paper's 19168 ns
    // neighbourhood (±30%).
    let b16 = profiles.iter().find(|p| p.batch == 16).expect("batch 16");
    let b64 = profiles.iter().find(|p| p.batch == 64).expect("batch 64");
    assert!((b16.memops_per_image_ns / b64.memops_per_image_ns - 1.0).abs() < 0.05);
    assert!(
        (13_000.0..25_000.0).contains(&b64.memops_per_image_ns),
        "stabilized memops {} ns not near the paper's 19168 ns",
        b64.memops_per_image_ns
    );
}

#[test]
fn fig7_shape_memory_never_approaches_capacity() {
    let profiles = sweep();
    let capacity = DeviceSpec::rtx_a5500().mem_capacity;
    for p in &profiles {
        assert!(
            p.mem_used_bytes * 10 < capacity,
            "batch {}: {} bytes is not 'considerably lower' than 24 GB",
            p.batch,
            p.mem_used_bytes
        );
    }
}

#[test]
fn fig8_shape_api_share_crossover() {
    let profiles = sweep();
    let b1 = &profiles[0];
    let b64 = profiles.last().expect("non-empty");
    // Batch 1: library loading dominates, synchronization is minor.
    assert!(
        b1.lib_load_pct > 60.0,
        "lib load at batch 1: {}%",
        b1.lib_load_pct
    );
    assert!(b1.sync_pct < 15.0, "sync at batch 1: {}%", b1.sync_pct);
    // Shares move monotonically in opposite directions.
    for w in profiles.windows(2) {
        assert!(w[1].lib_load_pct < w[0].lib_load_pct);
        assert!(w[1].sync_pct > w[0].sync_pct);
    }
    // By batch 64 synchronization has overtaken library loading (paper:
    // 45.40% and above cuLibraryLoadData).
    assert!(
        b64.sync_pct > b64.lib_load_pct,
        "no crossover by batch 64: sync {}% vs lib {}%",
        b64.sync_pct,
        b64.lib_load_pct
    );
    assert!(b64.sync_pct > 40.0);
}

#[test]
fn table3_shape_kernel_mix_rotates_from_gemm_to_conv() {
    let profiles = sweep();
    let b1 = &profiles[0];
    let b64 = profiles.last().expect("non-empty");
    // Batch 1: matrix multiplication leads convolution.
    assert!(
        b1.gemm_pct > b1.conv_pct,
        "b1: gemm {} conv {}",
        b1.gemm_pct,
        b1.conv_pct
    );
    assert!(b1.gemm_pct > 30.0);
    // Batch 64: convolution dominates (paper: 77.2%).
    assert!(b64.conv_pct > 50.0, "b64 conv {}%", b64.conv_pct);
    assert!(b64.gemm_pct < 10.0, "b64 gemm {}%", b64.gemm_pct);
    // Pooling stays within a stable band across the sweep (paper: 8.6–17.1).
    for p in &profiles {
        assert!(
            (4.0..20.0).contains(&p.pool_pct),
            "batch {}: pool {}% left the stable band",
            p.batch,
            p.pool_pct
        );
    }
    // Monotone trends.
    for w in profiles.windows(2) {
        assert!(w[1].gemm_pct <= w[0].gemm_pct);
        assert!(w[1].conv_pct >= w[0].conv_pct);
    }
}
